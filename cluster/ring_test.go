package cluster

import (
	"testing"

	"pdq"
)

// Ownership must be deterministic: two rings built with the same
// parameters agree on every key, because enqueue-side routing and
// home-side grouping rely on computing the same owner everywhere.
func TestRingDeterministic(t *testing.T) {
	a := newRing(8, DefaultVirtualNodes)
	b := newRing(8, DefaultVirtualNodes)
	for k := pdq.Key(0); k < 4096; k++ {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("rings disagree on key %d: %d vs %d", k, a.owner(k), b.owner(k))
		}
	}
}

// Every node must own a reasonable share of the key space, and owners
// must stay in range. With 64 virtual points per node the largest share
// should be within ~2x of the mean for the paper's cluster sizes.
func TestRingBalance(t *testing.T) {
	for _, nodes := range []int{2, 4, 8, 16} {
		r := newRing(nodes, DefaultVirtualNodes)
		counts := make([]int, nodes)
		const keys = 1 << 14
		for k := pdq.Key(0); k < keys; k++ {
			o := r.owner(k)
			if o < 0 || o >= nodes {
				t.Fatalf("nodes=%d: owner(%d) = %d out of range", nodes, k, o)
			}
			counts[o]++
		}
		mean := keys / nodes
		for n, got := range counts {
			if got == 0 {
				t.Fatalf("nodes=%d: node %d owns nothing", nodes, n)
			}
			if got > 2*mean || got < mean/3 {
				t.Errorf("nodes=%d: node %d owns %d keys, mean %d — ring too skewed",
					nodes, n, got, mean)
			}
		}
	}
}

// A single-node ring owns everything; one virtual point per node still
// yields a total ownership function.
func TestRingDegenerate(t *testing.T) {
	one := newRing(1, 1)
	for k := pdq.Key(0); k < 1000; k++ {
		if o := one.owner(k); o != 0 {
			t.Fatalf("single-node ring: owner(%d) = %d", k, o)
		}
	}
	r := newRing(3, 1)
	seen := make(map[int]bool)
	for k := pdq.Key(0); k < 1<<14; k++ {
		seen[r.owner(k)] = true
	}
	for n := 0; n < 3; n++ {
		if !seen[n] {
			t.Fatalf("vnodes=1: node %d owns nothing in the sampled space", n)
		}
	}
}

// More virtual nodes must not change whose ring it is — only the split.
// The cluster-level Owner accessor must agree with the internal ring.
func TestClusterOwnerMatchesRing(t *testing.T) {
	c, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := newRing(4, DefaultVirtualNodes)
	for k := pdq.Key(0); k < 2048; k++ {
		if c.Owner(k) != r.owner(k) {
			t.Fatalf("Cluster.Owner(%d) = %d, ring says %d", k, c.Owner(k), r.owner(k))
		}
	}
}

// sortKeys must order by global key hash (ties by key), dropping
// duplicates — the canonical acquisition order.
func TestSortKeys(t *testing.T) {
	in := []pdq.Key{9, 3, 9, 1, 3, 7}
	out := sortKeys(in)
	if len(out) != 4 {
		t.Fatalf("sortKeys kept %d keys, want 4 distinct", len(out))
	}
	for i := 1; i < len(out); i++ {
		hi, hj := keyHash(out[i-1]), keyHash(out[i])
		if hi > hj || (hi == hj && out[i-1] >= out[i]) {
			t.Fatalf("sortKeys out of order at %d: %v", i, out)
		}
	}
	// Input must be untouched (routing reuses the caller's slice).
	want := []pdq.Key{9, 3, 9, 1, 3, 7}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("sortKeys mutated its input: %v", in)
		}
	}
}

// groupByOwner must split a hash-sorted set into consecutive same-owner
// runs covering every key exactly once.
func TestGroupByOwner(t *testing.T) {
	r := newRing(4, DefaultVirtualNodes)
	sorted := sortKeys([]pdq.Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	groups := groupByOwner(r, sorted)
	var flat []pdq.Key
	for i, g := range groups {
		if len(g.keys) == 0 {
			t.Fatalf("group %d is empty", i)
		}
		if i > 0 && groups[i-1].owner == g.owner {
			t.Fatalf("adjacent groups %d,%d share owner %d", i-1, i, g.owner)
		}
		for _, k := range g.keys {
			if r.owner(k) != g.owner {
				t.Fatalf("key %d in group owned by %d, ring says %d", k, g.owner, r.owner(k))
			}
		}
		flat = append(flat, g.keys...)
	}
	if len(flat) != len(sorted) {
		t.Fatalf("groups cover %d keys, want %d", len(flat), len(sorted))
	}
	for i := range flat {
		if flat[i] != sorted[i] {
			t.Fatalf("groups reorder keys: %v vs %v", flat, sorted)
		}
	}
}
