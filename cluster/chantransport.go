package cluster

import (
	"sync"
	"time"

	"pdq/internal/sim"
)

// ChanOption configures a ChanTransport.
type ChanOption func(*chanConfig)

type chanConfig struct {
	loss  float64
	dup   float64
	delay time.Duration
	seed  uint64
}

// WithLoss makes the transport drop each delivery attempt independently
// with probability p (a duplicated message's two copies draw separately,
// so one copy can survive a drop of the other). p is clamped to [0, 1).
// Lost messages are repaired by the cluster's retransmit timer.
func WithLoss(p float64) ChanOption {
	return func(c *chanConfig) { c.loss = clampProb(p) }
}

// WithDuplicate makes the transport deliver each message twice with
// probability p — the receiver-side dedup must drop the extra copy. p is
// clamped to [0, 1).
func WithDuplicate(p float64) ChanOption {
	return func(c *chanConfig) { c.dup = clampProb(p) }
}

// WithDelay delays every delivery by a uniform random duration in
// [0, max]. Because each message draws its own delay, deliveries between a
// node pair can reorder — the session layer's reorder buffer puts them
// back in sequence.
func WithDelay(max time.Duration) ChanOption {
	return func(c *chanConfig) {
		if max > 0 {
			c.delay = max
		}
	}
}

// WithChanSeed seeds the transport's fault-injection draws, so a lossy run
// is reproducible. The default seed is 1.
func WithChanSeed(seed uint64) ChanOption {
	return func(c *chanConfig) { c.seed = seed }
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p >= 1 {
		return 0.999999
	}
	return p
}

// ChanTransport is the in-process Transport: per-node unbounded mailboxes
// drained by one delivery goroutine each, with injectable loss,
// duplication, and delay for fault testing. With no options it is a
// reliable, per-pair-FIFO transport suitable for production-style
// same-process use of Cluster.
type ChanTransport struct {
	cfg chanConfig

	rngMu sync.Mutex
	rng   *sim.Rand

	boxes []*mailbox
	recv  []func(from int, m WireMsg)

	timers sync.WaitGroup // outstanding delayed deliveries

	closeMu sync.Mutex
	closed  bool
}

// chanDelivery is one message sitting in a node's mailbox.
type chanDelivery struct {
	from int
	m    WireMsg
}

// mailbox is an unbounded FIFO drained by a dedicated goroutine. An
// unbounded queue (rather than a channel) keeps Send non-blocking even
// when a receive callback fans out more sends, so transport back-pressure
// can never deadlock the session layer.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []chanDelivery
	closed bool
	done   chan struct{}
}

func newMailbox() *mailbox {
	b := &mailbox{done: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(d chanDelivery) {
	b.mu.Lock()
	if !b.closed {
		b.queue = append(b.queue, d)
		b.cond.Signal()
	}
	b.mu.Unlock()
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	<-b.done
}

// NewChanTransport returns an in-process transport connecting nodes
// [0, nodes), shaped by opts.
func NewChanTransport(nodes int, opts ...ChanOption) *ChanTransport {
	cfg := chanConfig{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	t := &ChanTransport{
		cfg:   cfg,
		rng:   sim.NewRand(cfg.seed),
		boxes: make([]*mailbox, nodes),
		recv:  make([]func(int, WireMsg), nodes),
	}
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
		go t.drain(i)
	}
	return t
}

// drain delivers node i's mailbox in order on a dedicated goroutine, so
// receive callbacks for one node never run concurrently with each other
// from this transport.
func (t *ChanTransport) drain(i int) {
	b := t.boxes[i]
	defer close(b.done)
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.queue) == 0 && b.closed {
			b.mu.Unlock()
			return
		}
		batch := b.queue
		b.queue = nil
		b.mu.Unlock()
		recv := t.recv[i]
		for _, d := range batch {
			recv(d.from, d.m)
		}
	}
}

// Bind installs node's receive callback. It must be called before any
// traffic reaches the node.
func (t *ChanTransport) Bind(node int, recv func(from int, m WireMsg)) {
	t.recv[node] = recv
}

// Send delivers m best-effort, applying the configured loss, duplication,
// and delay. It never blocks on the receiver.
func (t *ChanTransport) Send(from, to int, m WireMsg) {
	copies := 1
	var drop1, drop2 bool
	var d1, d2 time.Duration
	t.rngMu.Lock()
	if t.cfg.dup > 0 && t.rng.Pick(t.cfg.dup) {
		copies = 2
	}
	drop1 = t.cfg.loss > 0 && t.rng.Pick(t.cfg.loss)
	drop2 = t.cfg.loss > 0 && t.rng.Pick(t.cfg.loss)
	if t.cfg.delay > 0 {
		d1 = time.Duration(t.rng.Uint64() % uint64(t.cfg.delay+1))
		d2 = time.Duration(t.rng.Uint64() % uint64(t.cfg.delay+1))
	}
	t.rngMu.Unlock()
	if !drop1 {
		t.deliver(to, chanDelivery{from, m}, d1)
	}
	if copies == 2 && !drop2 {
		t.deliver(to, chanDelivery{from, m}, d2)
	}
}

func (t *ChanTransport) deliver(to int, d chanDelivery, after time.Duration) {
	if after <= 0 {
		t.boxes[to].put(d)
		return
	}
	t.timers.Add(1)
	time.AfterFunc(after, func() {
		defer t.timers.Done()
		t.boxes[to].put(d)
	})
}

// Close stops delivery and waits for the delivery goroutines (and any
// pending delayed deliveries) to finish.
func (t *ChanTransport) Close() {
	t.closeMu.Lock()
	if t.closed {
		t.closeMu.Unlock()
		return
	}
	t.closed = true
	t.closeMu.Unlock()
	t.timers.Wait()
	for _, b := range t.boxes {
		b.close()
	}
}
