package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pdq"
	"pdq/internal/sim"
)

// FuzzClusterDispatch drives a randomized cluster — size, key space,
// workload shape, and transport fault rates all drawn from the fuzz
// input — and checks the cluster's two invariants at the end of every
// run: each enqueued message executes exactly once (effect-once under an
// at-least-once transport) and single-key messages from one origin on
// one key execute in enqueue order (per-key FIFO survives redelivery).
func FuzzClusterDispatch(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(8), uint16(64), uint8(10), uint8(10))
	f.Add(uint64(2), uint8(1), uint8(1), uint16(16), uint8(0), uint8(0))
	f.Add(uint64(3), uint8(3), uint8(5), uint16(100), uint8(30), uint8(30))
	f.Add(uint64(42), uint8(2), uint8(12), uint16(80), uint8(20), uint8(5))

	f.Fuzz(func(t *testing.T, seed uint64, nodesB, keysB uint8, msgsB uint16, lossB, dupB uint8) {
		nodes := 1 + int(nodesB%4)      // 1..4 nodes
		keySpace := 1 + int(keysB%16)   // 1..16 keys
		msgs := 1 + int(msgsB%128)      // 1..128 messages
		loss := float64(lossB%35) / 100 // 0..0.34
		dup := float64(dupB%35) / 100

		tr := NewChanTransport(nodes,
			WithLoss(loss),
			WithDuplicate(dup),
			WithDelay(200*time.Microsecond),
			WithChanSeed(seed|1))
		c, err := New(nodes,
			WithTransport(tr),
			WithRetransmitTimeout(2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()

		rec := newFaultRecorder()
		if err := c.Register("rec", rec.handle); err != nil {
			t.Fatal(err)
		}

		rng := sim.NewRand(seed ^ 0x5bd1e995)
		seqs := make(map[[2]uint64]int)
		for id := 0; id < msgs; id++ {
			origin := int(rng.Uint64() % uint64(nodes))
			m := &faultMsg{id: id, origin: origin, seq: -1}
			var keys []pdq.Key
			switch rng.Uint64() % 8 {
			case 0: // keyless: dispatches locally with no synchronization
			case 1, 2: // multi-key, possibly spanning owners
				n := 2 + int(rng.Uint64()%3)
				for j := 0; j < n; j++ {
					keys = append(keys, pdq.Key(rng.Uint64()%uint64(keySpace)))
				}
			default: // single key: joins that key's FIFO claim
				k := pdq.Key(rng.Uint64() % uint64(keySpace))
				sk := [2]uint64{uint64(origin), uint64(k)}
				m.key, m.seq = k, seqs[sk]
				seqs[sk]++
				keys = []pdq.Key{k}
			}
			if err := c.Enqueue(origin, "rec", m, keys...); err != nil {
				t.Fatal(err)
			}
		}

		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := c.Quiesce(ctx); err != nil {
			t.Fatalf("Quiesce: %v (nodes=%d msgs=%d loss=%.2f dup=%.2f, stats: %v)",
				err, nodes, msgs, loss, dup, c.Stats())
		}
		rec.check(t, msgs)
		if s := c.Stats(); s.Executed != uint64(msgs) {
			t.Fatal(fmt.Sprintf("Stats.Executed = %d, want %d", s.Executed, msgs))
		}
	})
}
