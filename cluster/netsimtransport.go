package cluster

import (
	"sync"

	"pdq/internal/netsim"
	"pdq/internal/sim"
)

// NetsimTransport adapts the internal/netsim cluster interconnect — the
// paper evaluation's network model — as a cluster Transport: every wire
// message pays realistic per-node NI serialization (header plus per-byte
// cost) and the constant point-to-point flight latency, with contention at
// each node's send and receive interfaces, exactly as WWT-II assumed.
//
// The discrete-event engine is single-threaded, so the transport owns it
// on one goroutine: Send posts the message to a pending list, and the
// engine goroutine injects pending sends at the current simulated time and
// runs the calendar dry, invoking receive callbacks from inside engine
// events. Simulated time therefore advances as fast as traffic allows (it
// is not paced to wall-clock time); what the model adds is realistic
// *ordering* and the traffic statistics — NetworkStats reports bytes,
// deliveries, and enqueue-to-delivery latency in simulated cycles.
//
// The underlying network is reliable and per-pair FIFO, so the session
// layer's retransmit timer stays quiet; the sessions still run, which
// keeps the dispatch semantics identical across transports.
type NetsimTransport struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []netsimSend
	closed  bool
	done    chan struct{}

	// engMu serializes engine/network access between the engine goroutine
	// and stats readers; it is never held while waiting for traffic, and
	// receive callbacks (which run under it) must not call NetworkStats.
	engMu sync.Mutex
	eng   *sim.Engine
	nw    *netsim.Network

	size func(WireMsg) int
	recv []func(from int, m WireMsg)
}

type netsimSend struct {
	from, to int
	m        WireMsg
}

// NetsimOption configures a NetsimTransport.
type NetsimOption func(*netsimConfig)

type netsimConfig struct {
	net  netsim.Config
	size func(WireMsg) int
}

// WithNetsimConfig overrides the network timing parameters (latency, NI
// header cycles, cycles per byte). The default is netsim.DefaultConfig —
// the paper's numbers.
func WithNetsimConfig(cfg netsim.Config) NetsimOption {
	return func(c *netsimConfig) { c.net = cfg }
}

// WithSizeFunc overrides how a wire message's NI serialization size (in
// bytes) is estimated. The default charges a fixed header per message plus
// the key set.
func WithSizeFunc(size func(WireMsg) int) NetsimOption {
	return func(c *netsimConfig) { c.size = size }
}

// defaultWireSize estimates a message's bytes on the wire: a fixed header
// (kind, seq/ack, op bookkeeping) plus 8 bytes per key; kindEnqueue also
// charges a nominal payload. Payloads are Go values, so the estimate
// stands in for a real codec.
func defaultWireSize(m WireMsg) int {
	n := 32 + 8*len(m.Keys)
	if m.Kind == kindEnqueue {
		n += 32 + len(m.Handler)
	}
	return n
}

// NewNetsimTransport returns a transport connecting nodes [0, nodes) over
// a fresh simulation engine and netsim network.
func NewNetsimTransport(nodes int, opts ...NetsimOption) *NetsimTransport {
	cfg := netsimConfig{net: netsim.DefaultConfig(), size: defaultWireSize}
	for _, o := range opts {
		o(&cfg)
	}
	eng := sim.NewEngine()
	t := &NetsimTransport{
		eng:  eng,
		nw:   netsim.New(eng, nodes, cfg.net),
		size: cfg.size,
		recv: make([]func(int, WireMsg), nodes),
		done: make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	for i := 0; i < nodes; i++ {
		id := i
		t.nw.Bind(id, func(nm netsim.Message) {
			d := nm.Payload.(netsimSend)
			t.recv[id](d.from, d.m)
		})
	}
	go t.loop()
	return t
}

// Bind installs node's receive callback.
func (t *NetsimTransport) Bind(node int, recv func(from int, m WireMsg)) {
	t.recv[node] = recv
}

// Send posts m for injection at the current simulated time. It never
// blocks and is safe to call from inside a receive callback (the engine
// goroutine picks the message up after the current event batch).
func (t *NetsimTransport) Send(from, to int, m WireMsg) {
	t.mu.Lock()
	if !t.closed {
		t.pending = append(t.pending, netsimSend{from, to, m})
		t.cond.Signal()
	}
	t.mu.Unlock()
}

// loop owns the engine: inject pending sends, run the calendar dry
// (deliveries invoke receive callbacks, which may post more sends), sleep
// until more traffic arrives.
func (t *NetsimTransport) loop() {
	defer close(t.done)
	for {
		t.mu.Lock()
		for len(t.pending) == 0 && !t.closed {
			t.cond.Wait()
		}
		if len(t.pending) == 0 && t.closed {
			t.mu.Unlock()
			return
		}
		batch := t.pending
		t.pending = nil
		t.mu.Unlock()
		t.engMu.Lock()
		for _, s := range batch {
			t.nw.Send(netsim.Message{Src: s.from, Dst: s.to, Size: t.size(s.m), Payload: s})
		}
		t.eng.Run()
		t.engMu.Unlock()
	}
}

// Close stops the engine goroutine. Pending sends not yet injected are
// dropped.
func (t *NetsimTransport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.pending = nil
	t.cond.Broadcast()
	t.mu.Unlock()
	<-t.done
}

// NetworkStats returns the netsim traffic snapshot: messages sent and
// delivered, bytes serialized, and the mean and max enqueue-to-delivery
// latency in simulated cycles.
func (t *NetsimTransport) NetworkStats() netsim.Stats {
	t.engMu.Lock()
	defer t.engMu.Unlock()
	return t.nw.Stats()
}

// NodeTraffic returns the per-node send/delivery counters of the
// underlying network.
func (t *NetsimTransport) NodeTraffic(node int) netsim.NodeTraffic {
	t.engMu.Lock()
	defer t.engMu.Unlock()
	return t.nw.NodeTraffic(node)
}

// interface conformance checks for the two shipped transports.
var (
	_ Transport = (*ChanTransport)(nil)
	_ Transport = (*NetsimTransport)(nil)
)
