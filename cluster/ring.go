package cluster

import (
	"sort"

	"pdq"
)

// keyHash maps a synchronization key onto the ring's hash space. It is the
// same finalizer family the pdq shard router uses, so key spreading is as
// uniform here as it is one level down; the two hash spaces are otherwise
// independent (the ring decides the owning node, the shard router decides
// the shard within that node's queue).
func keyHash(k pdq.Key) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// vnodeHash places virtual node replica r of node n on the ring. The input
// packs (node, replica) into one word before the same finalizer, so every
// replica lands independently.
func vnodeHash(node, replica int) uint64 {
	return keyHash(pdq.Key(uint64(node)<<32 | uint64(uint32(replica)) ^ 0x9e3779b9))
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int
}

// ring is a consistent-hash ring mapping every key to its home node. Each
// physical node contributes vnodes virtual points, so ownership splits the
// hash space into small arcs and stays balanced even at small node counts.
// The ring is immutable after construction; membership is fixed for the
// cluster's lifetime (no node failure model — see the package docs).
type ring struct {
	points []ringPoint
}

// DefaultVirtualNodes is the per-node virtual point count used when
// WithVirtualNodes is not given. 64 points per node keeps the largest
// ownership arc within a few percent of the mean for the paper's cluster
// sizes (4-16 nodes).
const DefaultVirtualNodes = 64

// newRing builds the ring for nodes physical nodes with vnodes virtual
// points each.
func newRing(nodes, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, nodes*vnodes)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(n, v), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // deterministic on (vanishingly rare) collisions
	})
	return r
}

// owner returns the node owning key k: the first virtual point at or after
// the key's hash, wrapping at the top of the ring.
func (r *ring) owner(k pdq.Key) int {
	h := keyHash(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}
