package cluster

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pdq"
)

// nopHandler is the handler carried by claim entries. It never runs: the
// worker loop intercepts claim entries after dequeue and parks them (the
// manual Entry lifecycle — keys held from dispatch until an explicit
// Complete) instead of calling Run.
func nopHandler(any) {}

// localClaim is the payload of a claim entry holding one of a local
// spanning op's home-owned key groups.
type localClaim struct{ op *spanOp }

// remoteClaim is the payload of a claim entry held on behalf of a
// spanning op homed at another node.
type remoteClaim struct {
	home  int
	op    uint64
	group int
}

// claimKey identifies the parked claims of one remote op at an owner.
type claimKey struct {
	home int
	op   uint64
}

// claimGroup is a run of a spanning op's keys, consecutive in global key
// hash order, that share one owner and are therefore acquired atomically.
type claimGroup struct {
	owner int
	keys  []pdq.Key
}

// spanOp is the home-side state machine of an entry whose key set spans
// owners. Groups are acquired strictly in ascending global hash order —
// every spanning op everywhere acquires in the same total key order, so
// claim waits can never form a cycle (an op only ever waits for keys
// hashing strictly above everything it already holds).
type spanOp struct {
	id     uint64
	origin int
	name   string
	data   any
	trace  uint64    // lifecycle trace ID riding the op (0 = untraced)
	keys   []pdq.Key // deduped, global hash order
	groups []claimGroup
	idx    int          // next group to acquire
	local  []*pdq.Entry // parked claim entries for home-owned groups
}

// txPeer is the sender half of the reliable session to one peer.
type txPeer struct {
	nextSeq uint64
	unacked map[uint64]unackedMsg
}

type unackedMsg struct {
	m   WireMsg
	at  int64         // last transmission, in retransmission-clock nanos (clock.go)
	rto time.Duration // current retransmit interval, doubled per resend
}

// rxPeer is the receiver half: in-order delivery with a reorder/dedup
// window. next is the lowest sequence not yet processed; anything below it
// is a duplicate, anything above is buffered until the gap fills.
type rxPeer struct {
	next     uint64
	buffered map[uint64]WireMsg
}

// node is one cluster member: a node-local pdq.Queue, its worker
// goroutines, the session state to every peer, and the claim tables.
type node struct {
	c  *Cluster
	id int
	q  *pdq.Queue

	mu     sync.Mutex
	tx     []txPeer
	rx     []rxPeer
	ops    map[uint64]*spanOp
	nextOp uint64
	parked map[claimKey][]*pdq.Entry

	local        atomic.Uint64 // admitted straight into the local queue
	forwarded    atomic.Uint64 // ops sent whole to a remote home
	spanning     atomic.Uint64 // spanning ops homed here
	remoteKeys   atomic.Uint64 // keys claimed on non-home owners (home side)
	claimsHeld   atomic.Uint64 // claim groups parked here for remote homes
	msgsSent     atomic.Uint64 // first transmissions of sequenced messages
	redelivered  atomic.Uint64 // retransmissions of unacked messages
	dupesDropped atomic.Uint64 // received duplicates discarded by the window
	executed     atomic.Uint64 // user handler completions
	deadLettered atomic.Uint64 // terminal failures (queue + spanning)
}

// init wires the node's queue and session state. The queue composes the
// cluster failure policy after any caller-supplied options, so retry and
// dead-letter accounting stay authoritative. The search window defaults
// to unbounded (prepended, so WithQueueOptions can override): a bounded
// window can hide a dispatchable claim behind a long run of entries
// blocked on keys another node holds, stalling cross-node progress that
// the claim itself would unblock.
func (n *node) init(c *Cluster, id, nodes int) {
	n.c = c
	n.id = id
	qopts := append(append([]pdq.Option{pdq.WithSearchWindow(0)}, c.cfg.qopts...),
		pdq.WithRetry(c.cfg.retry),
		pdq.WithDeadLetter(n.onQueueDeadLetter),
		// Label trace events with the node identity so merged snapshots
		// (Cluster.TraceSnapshot) attribute every event to its recorder.
		// Inert unless WithQueueOptions enabled pdq.WithTrace.
		pdq.WithTraceNode(id))
	n.q = pdq.New(qopts...)
	n.tx = make([]txPeer, nodes)
	n.rx = make([]rxPeer, nodes)
	for i := range n.tx {
		n.tx[i].unacked = make(map[uint64]unackedMsg)
		n.rx[i].next = 1
		n.rx[i].buffered = make(map[uint64]WireMsg)
	}
	n.ops = make(map[uint64]*spanOp)
	n.parked = make(map[claimKey][]*pdq.Entry)
}

// route admits a logical message at its origin node: straight into the
// local queue when this node owns every key, forwarded whole to the owner
// or home otherwise.
func (n *node) route(name string, data any, keys []pdq.Key) error {
	if len(keys) == 0 {
		n.local.Add(1)
		return n.enqueueLocal(name, data, nil, 0)
	}
	sorted := sortKeys(keys)
	home, spans := n.c.homeOf(sorted)
	if !spans && home == n.id {
		n.local.Add(1)
		return n.enqueueLocal(name, data, sorted, 0)
	}
	if home == n.id {
		// Spanning op homed here: start the acquisition directly. The
		// origin samples, so the trace starts at the node the user called.
		n.mu.Lock()
		n.startSpanLocked(n.id, name, data, sorted, n.q.TraceSampleID())
		n.mu.Unlock()
		return nil
	}
	n.forwarded.Add(1)
	// Sample before the message leaves: the forward hop is the trace's
	// first event, and the home node records the rest under the same ID.
	trace := n.q.TraceSampleID()
	n.q.RecordTraceEvent(trace, pdq.TraceForward, 0, int64(home))
	n.mu.Lock()
	n.sendSeqLocked(home, WireMsg{
		Kind: kindEnqueue, Origin: n.id, Handler: name, Keys: sorted, Data: data, TraceID: trace,
	})
	n.mu.Unlock()
	return nil
}

// enqueueLocal admits a message into this node's queue under its full key
// set. The handler wrapper counts successful executions cluster-side.
func (n *node) enqueueLocal(name string, data any, keys []pdq.Key, trace uint64) error {
	h := n.c.handler(name)
	if h == nil {
		return fmt.Errorf("%w: %q", ErrUnknownHandler, name)
	}
	// WithTraceID(0) is inert, so the local queue's own sampler decides
	// for origin-local messages while forwarded ones keep their ID.
	return n.q.Enqueue(func(d any) {
		h(d)
		n.executed.Add(1)
	}, pdq.WithKeys(keys...), pdq.WithData(data), pdq.WithTraceID(trace))
}

// startSpanLocked builds and starts the state machine for a spanning op
// homed at this node. Caller holds n.mu.
func (n *node) startSpanLocked(origin int, name string, data any, sorted []pdq.Key, trace uint64) {
	n.spanning.Add(1)
	groups := groupByOwner(n.c.ring, sorted)
	for _, g := range groups {
		if g.owner != n.id {
			n.remoteKeys.Add(uint64(len(g.keys)))
		}
	}
	n.nextOp++
	op := &spanOp{
		id: n.nextOp, origin: origin, name: name, data: data, trace: trace,
		keys: sorted, groups: groups,
	}
	n.q.RecordTraceEvent(trace, pdq.TraceSpanStart, op.id, int64(len(groups)))
	n.ops[op.id] = op
	n.advanceLocked(op)
}

// advanceLocked acquires the op's next claim group: home-owned groups are
// claim entries in the local queue (parked by the worker loop when they
// dispatch), remote groups are kindClaim messages (advanced by the grant).
// When every group is held, the op's execution rides a NoSync trampoline
// entry so a pool worker — not the session goroutine — runs the handler.
func (n *node) advanceLocked(op *spanOp) {
	if op.idx < len(op.groups) {
		g := op.groups[op.idx]
		if g.owner == n.id {
			// The claim entry carries the op's trace ID, so its Barge
			// lifecycle in the local queue joins the op's trace.
			if err := n.q.Enqueue(nopHandler, pdq.Barge(),
				pdq.WithKeys(g.keys...), pdq.WithData(&localClaim{op: op}),
				pdq.WithTraceID(op.trace)); err != nil {
				n.failSpanLocked(op, err)
			}
			return
		}
		n.q.RecordTraceEvent(op.trace, pdq.TraceClaimSend, op.id, int64(g.owner))
		n.sendSeqLocked(g.owner, WireMsg{Kind: kindClaim, Op: op.id, Group: op.idx, Keys: g.keys, TraceID: op.trace})
		return
	}
	if err := n.q.Enqueue(func(any) { n.execSpan(op) }, pdq.NoSync(),
		pdq.WithTraceID(op.trace)); err != nil {
		n.failSpanLocked(op, err)
	}
}

// failSpanLocked dead-letters a spanning op that could not finish
// acquiring (queue closed or full mid-acquisition) and frees whatever it
// already holds. Caller holds n.mu.
func (n *node) failSpanLocked(op *spanOp, err error) {
	delete(n.ops, op.id)
	n.deadLetterSpan(op, err)
	n.releaseSpanLocked(op)
}

// execSpan runs a fully-acquired spanning op on a pool worker: the user
// handler guarded like pdq.Run guards one, with the cluster's retry
// budget applied as immediate re-execution (the op already holds every
// key, so re-queueing could only deadlock against its own claims), then
// release of all claim groups.
func (n *node) execSpan(op *spanOp) {
	h := n.c.handler(op.name)
	var err error
	if h == nil {
		err = fmt.Errorf("%w: %q", ErrUnknownHandler, op.name)
	} else {
		for attempt := 0; ; attempt++ {
			if err = runGuarded(h, op.data); err == nil {
				n.executed.Add(1)
				break
			}
			if attempt >= n.c.cfg.retry {
				break
			}
		}
	}
	if err != nil {
		n.deadLetterSpan(op, err)
	}
	n.mu.Lock()
	delete(n.ops, op.id)
	n.releaseSpanLocked(op)
	n.mu.Unlock()
}

// releaseSpanLocked completes the op's parked local claim entries and
// sends one kindRelease per distinct remote owner holding claims for it.
// Caller holds n.mu.
func (n *node) releaseSpanLocked(op *spanOp) {
	for _, e := range op.local {
		n.q.Complete(e)
	}
	op.local = nil
	released := make(map[int]bool, 2)
	for i := 0; i < op.idx && i < len(op.groups); i++ {
		g := op.groups[i]
		if g.owner == n.id || released[g.owner] {
			continue
		}
		released[g.owner] = true
		n.q.RecordTraceEvent(op.trace, pdq.TraceReleaseSend, op.id, int64(g.owner))
		n.sendSeqLocked(g.owner, WireMsg{Kind: kindRelease, Op: op.id, TraceID: op.trace})
	}
}

// runGuarded executes a user handler with the panic containment pdq.Run
// applies, reporting the panic as a *pdq.PanicError.
func runGuarded(h func(any), data any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &pdq.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	h(data)
	return nil
}

// serve is one worker goroutine: ordinary entries run through the queue's
// guarded lifecycle, claim entries are parked — their keys stay held until
// the owning op completes and releases them.
func (n *node) serve(ctx context.Context) {
	for {
		e, err := n.q.DequeueContext(ctx)
		if err != nil {
			return // cancelled, or closed and drained
		}
		switch d := e.Message().Data.(type) {
		case *localClaim:
			n.mu.Lock()
			d.op.local = append(d.op.local, e)
			d.op.idx++
			n.advanceLocked(d.op)
			n.mu.Unlock()
		case *remoteClaim:
			n.mu.Lock()
			ck := claimKey{home: d.home, op: d.op}
			n.parked[ck] = append(n.parked[ck], e)
			n.claimsHeld.Add(1)
			// The grant inherits the claim entry's trace ID (stamped at
			// kindClaim admission), closing the claim → grant hop pair.
			n.sendSeqLocked(d.home, WireMsg{Kind: kindGrant, Op: d.op, Group: d.group,
				TraceID: e.Message().TraceID})
			n.mu.Unlock()
		default:
			n.q.Run(e)
		}
	}
}

// sendSeqLocked transmits m on the session to peer `to`: the sequence
// number is assigned and the message recorded unacked in the same locked
// region as the transport send, so per-pair send order always matches
// sequence order. Caller holds n.mu.
func (n *node) sendSeqLocked(to int, m WireMsg) {
	t := &n.tx[to]
	t.nextSeq++
	m.Seq = t.nextSeq
	t.unacked[m.Seq] = unackedMsg{m: m, at: nowNanos(), rto: n.c.cfg.rto}
	n.msgsSent.Add(1)
	n.c.tr.Send(n.id, to, m)
}

// recv is the node's transport receive callback. Acks retire unacked
// state; sequenced messages pass through the per-sender reorder/dedup
// window and are processed strictly in sequence order.
func (n *node) recv(from int, m WireMsg) {
	if m.Kind == kindAck {
		n.mu.Lock()
		delete(n.tx[from].unacked, m.Ack)
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	r := &n.rx[from]
	if _, dup := r.buffered[m.Seq]; m.Seq < r.next || dup {
		// Already processed or already buffered: a transport duplicate or a
		// retransmission that crossed our ack. Drop it, but re-ack — the
		// sender is retransmitting precisely because an ack was lost.
		n.dupesDropped.Add(1)
		n.ackLocked(from, m.Seq)
		n.mu.Unlock()
		return
	}
	r.buffered[m.Seq] = m
	n.ackLocked(from, m.Seq)
	for {
		mm, ok := r.buffered[r.next]
		if !ok {
			break
		}
		delete(r.buffered, r.next)
		r.next++
		n.processLocked(from, mm)
	}
	n.mu.Unlock()
}

// ackLocked acknowledges one received sequence. Acks ride outside the
// sequenced stream and are never retransmitted; losing one just makes the
// sender retransmit the data message, which is re-acked above.
func (n *node) ackLocked(from int, seq uint64) {
	n.c.tr.Send(n.id, from, WireMsg{Kind: kindAck, Ack: seq})
}

// processLocked handles one in-order sequenced message. Caller holds
// n.mu; everything here is quick and non-blocking (queue admissions,
// claim bookkeeping, transport sends).
func (n *node) processLocked(from int, m WireMsg) {
	switch m.Kind {
	case kindEnqueue:
		n.q.RecordTraceEvent(m.TraceID, pdq.TraceRecv, m.Seq, int64(from))
		home, spans := n.c.homeOf(m.Keys)
		if spans && home == n.id {
			n.startSpanLocked(m.Origin, m.Handler, m.Data, m.Keys, m.TraceID)
			return
		}
		// Wholly owned here (the sender routed it; re-derived for safety).
		if err := n.enqueueLocal(m.Handler, m.Data, m.Keys, m.TraceID); err != nil {
			n.deadLettered.Add(1)
			n.c.deadLetter(n.id, pdq.Message{Keys: m.Keys, Data: m.Data}, err)
		}
	case kindClaim:
		n.q.RecordTraceEvent(m.TraceID, pdq.TraceRecv, m.Seq, int64(from))
		if err := n.q.Enqueue(nopHandler, pdq.Barge(), pdq.WithKeys(m.Keys...),
			pdq.WithData(&remoteClaim{home: from, op: m.Op, group: m.Group}),
			pdq.WithTraceID(m.TraceID)); err != nil {
			// Queue closed or full: the claim can never be granted. The home
			// op stalls until the cluster is torn down; record the failure.
			n.deadLettered.Add(1)
			n.c.deadLetter(n.id, pdq.Message{Keys: m.Keys}, err)
		}
	case kindGrant:
		n.q.RecordTraceEvent(m.TraceID, pdq.TraceGrant, m.Seq, int64(from))
		op := n.ops[m.Op]
		if op == nil || op.idx != m.Group {
			return // stale grant for an op already failed/finished
		}
		op.idx++
		n.advanceLocked(op)
	case kindRelease:
		n.q.RecordTraceEvent(m.TraceID, pdq.TraceRecv, m.Seq, int64(from))
		ck := claimKey{home: from, op: m.Op}
		for _, e := range n.parked[ck] {
			n.q.Complete(e)
		}
		delete(n.parked, ck)
	}
}

// retransmit drives the at-least-once delivery loop: every unacked
// sequenced message older than its current retransmit interval is sent
// again, until its ack arrives. The interval starts at the configured
// timeout and doubles per resend (capped): when delivery is merely slow
// rather than lossy — a congested receiver, a simulated network paying
// per-message latency — fixed-interval resending of the whole backlog
// adds traffic that slows delivery further, and the session spirals into
// a retransmission storm. Backoff bounds the resends per message at
// log(latency/rto) and breaks the feedback loop; a genuinely lost
// message still repairs at the base timeout on its first retry.
func (n *node) retransmit(ctx context.Context, rto time.Duration) {
	tick := time.NewTicker(rto / 2)
	defer tick.Stop()
	maxRTO := 64 * rto
	if maxRTO > time.Second {
		maxRTO = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		now := nowNanos()
		n.mu.Lock()
		for to := range n.tx {
			for seq, u := range n.tx[to].unacked {
				if now-u.at >= int64(u.rto) {
					u.at = now
					if u.rto < maxRTO {
						u.rto *= 2
					}
					n.tx[to].unacked[seq] = u
					n.redelivered.Add(1)
					n.q.RecordTraceEvent(u.m.TraceID, pdq.TraceRetransmit, u.m.Seq, int64(to))
					n.c.tr.Send(n.id, to, u.m)
				}
			}
		}
		n.mu.Unlock()
	}
}

// quietLocked reports that the node holds no pending work: no unacked or
// buffered session traffic, no spanning ops or parked claims, and an idle
// queue. Caller holds n.mu.
func (n *node) quietLocked() bool {
	for i := range n.tx {
		if len(n.tx[i].unacked) > 0 {
			return false
		}
	}
	for i := range n.rx {
		if len(n.rx[i].buffered) > 0 {
			return false
		}
	}
	return len(n.ops) == 0 && len(n.parked) == 0 &&
		n.q.Len() == 0 && n.q.InFlight() == 0
}

// onQueueDeadLetter is the pdq dead-letter hook installed on the node's
// queue: count, then delegate to the cluster policy.
func (n *node) onQueueDeadLetter(m pdq.Message, err error) {
	n.deadLettered.Add(1)
	n.c.deadLetter(n.id, m, err)
}

// deadLetterSpan routes a terminally failed spanning op to the cluster
// dead-letter policy as a synthesized message carrying its key set and
// payload.
func (n *node) deadLetterSpan(op *spanOp, err error) {
	n.deadLettered.Add(1)
	n.c.deadLetter(n.id, pdq.Message{Keys: op.keys, Data: op.data}, err)
}

// logDeadLetter is the default cluster dead-letter policy.
func logDeadLetter(node int, m pdq.Message, err error) {
	log.Printf("cluster: node %d dead-letter entry (keys=%v): %v", node, m.Keys, err)
}
