// Package-local monotonic clock for the session layer's retransmission
// timing, mirroring the root package's scheduling clock (sched.go).
package cluster

import "time"

// clockEpoch anchors the cluster's retransmission clock. RTO deadlines
// are stored and compared as nanoseconds since this anchor through its
// monotonic reading, so an NTP step can neither fire a retransmission
// storm (clock jumped forward) nor stall loss repair (clock jumped
// back). The sessions only ever compare durations, so the anchor needs
// no relation to the root package's scheduling epoch.
// Retransmission paths must read time only through nowNanos; pdqvet's
// wallclock analyzer enforces it (the markers opt this package in and
// sanction the anchor's raw read).
//
//pdq:clock-discipline
//pdq:wallclock
var clockEpoch = time.Now()

// nowNanos returns the current instant on the retransmission clock.
//
//pdq:wallclock — reads through the anchor's monotonic reading.
func nowNanos() int64 { return int64(time.Since(clockEpoch)) }
