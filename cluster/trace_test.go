package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"pdq"
)

// tracesByID buckets a merged snapshot into per-trace event lists,
// preserving the snapshot's time order.
func tracesByID(evs []pdq.TraceEvent) map[uint64][]pdq.TraceEvent {
	out := make(map[uint64][]pdq.TraceEvent)
	for _, ev := range evs {
		if ev.TraceID != 0 {
			out[ev.TraceID] = append(out[ev.TraceID], ev)
		}
	}
	return out
}

func kindSet(evs []pdq.TraceEvent) map[pdq.TraceKind]bool {
	s := make(map[pdq.TraceKind]bool)
	for _, ev := range evs {
		s[ev.Kind] = true
	}
	return s
}

func nodeSet(evs []pdq.TraceEvent) map[int]bool {
	s := make(map[int]bool)
	for _, ev := range evs {
		s[ev.Node] = true
	}
	return s
}

// A rate-1 traced 4-node cluster must correlate a forwarded message's
// whole lifecycle — the origin's forward hop, the home's receive, and
// the home queue's admission-to-completion core events — under one
// trace ID spanning both nodes, and a spanning op's claim/grant/release
// wire hops must join the same trace as its home dispatch.
func TestClusterTracePropagation(t *testing.T) {
	c, err := New(4, WithQueueOptions(pdq.WithTrace(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("noop", func(any) {}); err != nil {
		t.Fatal(err)
	}

	// One forwarded message: a key owned by node 2, enqueued at node 0.
	fwdKey := keyOwnedBy(t, c, 2, 0)
	if err := c.Enqueue(0, "noop", nil, fwdKey); err != nil {
		t.Fatal(err)
	}
	// One spanning message: keys owned by two different nodes, enqueued
	// at one of the owners so the op homes locally and claims remotely.
	kA := keyOwnedBy(t, c, 1, 0)
	kB := keyOwnedBy(t, c, 3, 0)
	if err := c.Enqueue(1, "noop", nil, kA, kB); err != nil {
		t.Fatal(err)
	}
	quiesce(t, c)

	traces := tracesByID(c.TraceSnapshot())

	// The spanning message may itself forward first (its home is the
	// lowest-hashing key's owner, not necessarily the origin), so the
	// span_start kind — not the forward hop — identifies it.
	var fwd, span []pdq.TraceEvent
	for _, evs := range traces {
		ks := kindSet(evs)
		switch {
		case ks[pdq.TraceSpanStart]:
			span = evs
		case ks[pdq.TraceForward]:
			fwd = evs
		}
	}

	if fwd == nil {
		t.Fatal("no trace carries a forward hop")
	}
	for _, k := range []pdq.TraceKind{pdq.TraceForward, pdq.TraceRecv, pdq.TraceEnqueue,
		pdq.TraceDispatch, pdq.TraceHandlerStart, pdq.TraceHandlerEnd, pdq.TraceComplete} {
		if !kindSet(fwd)[k] {
			t.Fatalf("forwarded trace lacks %s: %v", k, fwd)
		}
	}
	ns := nodeSet(fwd)
	if !ns[0] || !ns[2] {
		t.Fatalf("forwarded trace spans nodes %v, want origin 0 and home 2", ns)
	}
	for i := 1; i < len(fwd); i++ {
		if fwd[i].At < fwd[i-1].At {
			t.Fatalf("forwarded trace timestamps regress at %d: %v", i, fwd)
		}
	}

	if span == nil {
		t.Fatal("no trace carries a span_start hop")
	}
	sk := kindSet(span)
	for _, k := range []pdq.TraceKind{pdq.TraceSpanStart, pdq.TraceClaimSend, pdq.TraceGrant,
		pdq.TraceReleaseSend, pdq.TraceHandlerStart, pdq.TraceHandlerEnd} {
		if !sk[k] {
			t.Fatalf("spanning trace lacks %s: %v", k, span)
		}
	}
	if sn := nodeSet(span); len(sn) < 2 {
		t.Fatalf("spanning trace confined to nodes %v, want at least home + remote owner", sn)
	}
}

// A lossy transport must surface its repair work in the trace:
// retransmissions of unacked traced forwards join the forward's trace
// ID, and every forwarded trace still reaches completion exactly once.
func TestClusterTraceRetransmit(t *testing.T) {
	tr := NewChanTransport(2, WithLoss(0.4), WithChanSeed(7))
	c, err := New(2, WithTransport(tr), WithRetransmitTimeout(2*time.Millisecond),
		WithQueueOptions(pdq.WithTrace(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var ran atomic.Uint64
	if err := c.Register("count", func(any) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	k := keyOwnedBy(t, c, 1, 0)
	const msgs = 30
	for i := 0; i < msgs; i++ {
		if err := c.Enqueue(0, "count", nil, k); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, c)
	if got := ran.Load(); got != msgs {
		t.Fatalf("handler ran %d times, want %d", got, msgs)
	}
	forwarded, retransmitted := 0, 0
	for _, evs := range tracesByID(c.TraceSnapshot()) {
		ks := kindSet(evs)
		if !ks[pdq.TraceForward] {
			continue
		}
		forwarded++
		if !ks[pdq.TraceComplete] {
			t.Fatalf("forwarded trace lacks completion: %v", evs)
		}
		if ks[pdq.TraceRetransmit] {
			retransmitted++
		}
	}
	if forwarded != msgs {
		t.Fatalf("reconstructed %d forwarded traces, want %d", forwarded, msgs)
	}
	if retransmitted == 0 {
		t.Fatal("40% loss produced no traced retransmission")
	}
}
