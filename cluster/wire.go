package cluster

import (
	"fmt"

	"pdq"
)

// msgKind discriminates the cluster's wire messages.
type msgKind uint8

const (
	// kindEnqueue carries a whole logical message to the node that will
	// dispatch it (its home). The receiver admits it into its local queue,
	// or starts a spanning-op acquisition when the key set crosses owners.
	kindEnqueue msgKind = iota + 1
	// kindClaim asks a key owner to hold one claim group (a run of keys in
	// global hash order) on behalf of a spanning op at another node.
	kindClaim
	// kindGrant answers a claim: the group's keys are now held (the claim
	// entry dispatched at the owner) and stay held until kindRelease.
	kindGrant
	// kindRelease frees every claim group an owner holds for an op.
	kindRelease
	// kindAck acknowledges receipt of one sequenced message. Acks are
	// unsequenced and never retransmitted: a lost ack is repaired by the
	// sender retransmitting the data message, which the receiver re-acks.
	kindAck
)

// String names the message kind for diagnostics.
func (k msgKind) String() string {
	switch k {
	case kindEnqueue:
		return "enqueue"
	case kindClaim:
		return "claim"
	case kindGrant:
		return "grant"
	case kindRelease:
		return "release"
	case kindAck:
		return "ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// WireMsg is the unit a Transport moves between nodes. It is a flat
// in-process value (payloads are passed by reference, never serialized);
// a Transport must deliver it unmodified but is free to drop, duplicate,
// delay, or reorder deliveries — the cluster's session layer rebuilds an
// exactly-once, in-order stream per (sender, receiver) pair on top.
type WireMsg struct {
	Kind msgKind

	// Seq is the per-(sender, receiver) session sequence number, assigned
	// from 1 in send order. It is 0 only on kindAck, which rides outside
	// the sequenced stream.
	Seq uint64
	// Ack is the sequence number being acknowledged (kindAck only).
	Ack uint64

	// Op identifies a spanning op, unique within its home node
	// (kindClaim, kindGrant, kindRelease). Claims from different homes are
	// disambiguated by the sender, so ids need not be globally unique.
	Op uint64
	// Group is the claim-group index within the op (kindClaim, kindGrant).
	Group int

	// Origin is the node whose Enqueue call created the logical message
	// (kindEnqueue; carried for diagnostics and ordering tests).
	Origin int
	// Handler names the registered handler to run (kindEnqueue).
	Handler string
	// Keys is the message's synchronization key set (kindEnqueue), or the
	// claim group's keys (kindClaim).
	Keys []pdq.Key
	// Data is the message payload (kindEnqueue).
	Data any

	// TraceID carries the lifecycle-trace identity of the logical message
	// or spanning op this wire message serves (0 = untraced). Propagating
	// it on every hop — forwards, claims, grants, releases, and their
	// retransmissions — lets the flight recorders of all involved nodes
	// correlate into one cross-node trace (see pdq.WithTrace).
	TraceID uint64
}

// Transport moves wire messages between the cluster's nodes. Delivery is
// best-effort: an implementation may drop, duplicate, delay, or reorder
// messages (the in-process ChanTransport does all four on demand), and the
// cluster's session layer is responsible for reliability on top. The
// contract an implementation must keep:
//
//   - Send must be safe for concurrent use and safe to call from inside a
//     receive callback (a received message frequently triggers an ack or a
//     grant on the same stack).
//   - Receive callbacks must be invoked without any Transport-internal
//     lock held that Send also takes on that path.
//   - Bind must be called for every node before traffic reaches it;
//     Cluster construction does this before any message flows.
type Transport interface {
	// Send delivers m from node `from` to node `to`, best-effort.
	Send(from, to int, m WireMsg)
	// Bind installs the receive callback for node id.
	Bind(node int, recv func(from int, m WireMsg))
	// Close stops delivery. Messages still in flight may be dropped.
	Close()
}
